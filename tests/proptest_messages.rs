//! Property tests of the wire protocol: every message variant survives an
//! encode/decode round trip, and the decoder never panics on arbitrary or
//! truncated input — a hostile peer can at worst produce a decode error.

use proptest::prelude::*;

use bytes::Bytes;
use volley::core::adaptation::PeriodReport;
use volley::core::snapshot::SamplerSnapshot;
use volley::core::task::MonitorId;
use volley::core::Interval;
use volley::core::{AdaptationConfig, AdaptiveSampler};
use volley::runtime::message::{
    decode, encode, ControlFrame, CoordinatorToMonitor, CoordinatorToRunner, MonitorFrame,
    MonitorToCoordinator, TickData, TickSummary,
};

/// A realistic sampler snapshot with proptest-supplied variation: built
/// through the real sampler so every invariant the restore path expects
/// holds, then perturbed in the serializable fields.
fn sampler_snapshot(threshold: f64, observed: u64) -> SamplerSnapshot {
    let mut sampler = AdaptiveSampler::new(AdaptationConfig::default(), threshold);
    let mut tick = 0u64;
    for i in 0..observed {
        let obs = sampler.observe(tick, (i % 13) as f64);
        tick = obs.next_sample_tick.max(tick + 1);
    }
    sampler.to_snapshot()
}

fn round_trip<M>(msg: &M)
where
    M: serde::Serialize + for<'de> serde::Deserialize<'de> + PartialEq + std::fmt::Debug,
{
    let frame = encode(msg);
    assert_eq!(frame.last(), Some(&b'\n'), "frames are newline-terminated");
    let back: M = decode(&frame).expect("round trip decodes");
    assert_eq!(&back, msg);
}

proptest! {
    /// `MonitorToCoordinator` round-trips for every variant.
    #[test]
    fn monitor_frames_round_trip(
        monitor in 0u32..1000,
        tick in 0u64..u64::MAX,
        value in -1e12f64..1e12,
        flags in 0u8..4,
    ) {
        let sampled = flags & 1 != 0;
        let violation = flags & 2 != 0;
        round_trip(&MonitorToCoordinator::TickDone {
            monitor: MonitorId(monitor),
            tick,
            sampled,
            violation,
            suppressed: flags & 2 != 0 && !sampled,
        });
        round_trip(&MonitorToCoordinator::PollReply {
            monitor: MonitorId(monitor),
            tick,
            value,
            forced_sample: sampled,
        });
        round_trip(&MonitorToCoordinator::Revived {
            monitor: MonitorId(monitor),
        });
        round_trip(&MonitorToCoordinator::LeaderState {
            tick,
            active: flags & 1 != 0,
        });
    }

    /// The snapshot-bearing variants — the only ones carrying full
    /// adaptation state — round-trip in both directions.
    #[test]
    fn snapshot_frames_round_trip(
        monitor in 0u32..1000,
        threshold in 1.0f64..1e6,
        observed in 0u64..40,
    ) {
        let snapshot = sampler_snapshot(threshold, observed);
        round_trip(&MonitorToCoordinator::StateSnapshot {
            monitor: MonitorId(monitor),
            snapshot,
        });
        round_trip(&CoordinatorToMonitor::RestoreState { snapshot });
    }

    /// Period reports — the only variant holding nested structures and a
    /// variable-length payload — round-trip too.
    #[test]
    fn period_reports_round_trip(
        monitor in 0u32..1000,
        observations in 0u32..100_000,
        beta in 0.0f64..1.0,
        interval in 0u32..4096,
        curve in prop::collection::vec(0.0f64..1.0, 0..16),
    ) {
        round_trip(&MonitorToCoordinator::Report {
            monitor: MonitorId(monitor),
            report: PeriodReport {
                observations,
                avg_beta_current: beta,
                avg_beta_grown: beta / 2.0,
                avg_potential_reduction: 1.0 - beta,
                interval: Interval::new_clamped(interval),
                at_max_interval: interval >= 4095,
                cost_curve: curve,
            },
        });
    }

    /// `CoordinatorToMonitor` round-trips for every variant.
    #[test]
    fn coordinator_frames_round_trip(
        tick in 0u64..u64::MAX,
        value in -1e12f64..1e12,
        err in 0.0f64..1.0,
    ) {
        round_trip(&CoordinatorToMonitor::Tick(TickData { tick, value }));
        round_trip(&CoordinatorToMonitor::Poll { tick });
        round_trip(&CoordinatorToMonitor::RequestReport);
        round_trip(&CoordinatorToMonitor::SetAllowance { err });
        round_trip(&CoordinatorToMonitor::NewEpoch { epoch: tick });
        round_trip(&CoordinatorToMonitor::RequestSnapshot);
        round_trip(&CoordinatorToMonitor::ResetSampler);
        round_trip(&CoordinatorToMonitor::SetGate {
            interval: if err < 0.5 { Some(tick as u32 % 64 + 1) } else { None },
        });
        round_trip(&CoordinatorToMonitor::Shutdown);
    }

    /// Epoch envelopes round-trip: sealing a message and decoding the
    /// frame recovers both the epoch and the payload.
    #[test]
    fn epoch_envelopes_round_trip(
        epoch in 0u64..u64::MAX,
        monitor in 0u32..1000,
        tick in 0u64..u64::MAX,
    ) {
        let msg = MonitorToCoordinator::TickDone {
            monitor: MonitorId(monitor),
            tick,
            sampled: true,
            violation: false,
            suppressed: false,
        };
        let sealed = MonitorFrame::seal(epoch, msg.clone());
        let frame: MonitorFrame = decode(&sealed).expect("monitor envelope decodes");
        prop_assert_eq!(frame.epoch, epoch);
        prop_assert_eq!(frame.msg, msg);

        let ctrl = CoordinatorToMonitor::Poll { tick };
        let sealed = ControlFrame::seal(epoch, ctrl);
        let frame: ControlFrame = decode(&sealed).expect("control envelope decodes");
        prop_assert_eq!(frame.epoch, epoch);
        prop_assert_eq!(frame.msg, ctrl);
    }

    /// `CoordinatorToRunner` round-trips for every variant.
    #[test]
    fn runner_frames_round_trip(
        monitor in 0u32..1000,
        tick in 0u64..u64::MAX,
        counts in (0u32..10_000, 0u32..10_000, 0u32..10_000, 0u32..10_000),
        flags in 0u8..4,
    ) {
        round_trip(&CoordinatorToRunner::Summary(TickSummary {
            tick,
            scheduled_samples: counts.0,
            poll_samples: counts.1,
            local_violations: counts.2,
            polled: flags & 1 != 0,
            alerted: flags & 2 != 0,
            missing_reports: counts.3,
            degraded: flags & 1 != 0,
            stale_epoch_frames: counts.2,
            suppressed_samples: counts.1,
            gated: flags & 2 != 0,
        }));
        round_trip(&CoordinatorToRunner::MonitorQuarantined {
            monitor: MonitorId(monitor),
            tick,
            consecutive_missed: counts.0,
        });
        round_trip(&CoordinatorToRunner::MonitorRecovered {
            monitor: MonitorId(monitor),
            tick,
        });
    }

    /// Decoding arbitrary bytes never panics — it either yields a value
    /// or an error.
    #[test]
    fn decoding_arbitrary_bytes_never_panics(
        raw in prop::collection::vec(0u16..256, 0..128),
    ) {
        let bytes = Bytes::from(raw.iter().map(|&b| b as u8).collect::<Vec<u8>>());
        let _ = decode::<MonitorToCoordinator>(&bytes);
        let _ = decode::<CoordinatorToMonitor>(&bytes);
        let _ = decode::<CoordinatorToRunner>(&bytes);
        let _ = decode::<TickSummary>(&bytes);
        let _ = decode::<MonitorFrame>(&bytes);
        let _ = decode::<ControlFrame>(&bytes);
    }

    /// Decoding a truncated frame of a real message never panics, and a
    /// strict prefix never decodes into a different valid message.
    #[test]
    fn truncated_frames_error_not_panic(
        monitor in 0u32..1000,
        tick in 0u64..u64::MAX,
        cut in 0usize..4096,
    ) {
        let msg = MonitorToCoordinator::TickDone {
            monitor: MonitorId(monitor),
            tick,
            sampled: true,
            violation: false,
            suppressed: false,
        };
        let frame = encode(&msg);
        // Stay strictly inside the JSON body: cutting only the trailing
        // newline leaves a complete document, which rightly decodes.
        let cut = cut % (frame.len() - 1);
        let truncated = Bytes::from(frame.as_ref()[..cut].to_vec());
        prop_assert!(decode::<MonitorToCoordinator>(&truncated).is_err());
    }
}
