//! Integration tests of the `volley-analyze` job framework against real
//! store directories: a planted leader/follower alert cascade is
//! recovered at rank 1 however the segment boundaries fall, a job run is
//! byte-identical across repeated runs of the same directory, and
//! corrupt or truncated segments never panic the framework — corruption
//! shrinks coverage, it never invents pairs.

use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use volley::analyze::{run_job, CorrelationMatrixConfig, CorrelationMatrixJob};
use volley::store::{Record, RecordKind, Store};

/// A unique on-disk scratch directory per case, so shrinking reruns
/// never collide with each other or with parallel test binaries.
fn case_dir(prefix: &str) -> std::path::PathBuf {
    static CASE: AtomicU64 = AtomicU64::new(0);
    let id = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("{prefix}-{}-{id}", std::process::id()))
}

fn alert(task: u32, tick: u64) -> Record {
    Record {
        task,
        monitor: 0,
        kind: RecordKind::Alert,
        tick,
        value: 1.0,
    }
}

/// Writes the planted cascade: task 0 (leader) alerts at tick `40k`,
/// task 1 (follower) echoes at `40k + 2`, task 2 spikes on an
/// incommensurate grid that mostly misses the leader's lag window.
/// `flush_every` controls where segment boundaries fall.
fn write_cascade(dir: &std::path::Path, cycles: u64, flush_every: usize) -> Store {
    let mut store = Store::open(dir)
        .expect("open store")
        .with_flush_limits(flush_every, u64::MAX);
    for k in 0..cycles {
        store.append(alert(0, 40 * k)).expect("append leader");
        store.append(alert(1, 40 * k + 2)).expect("append follower");
        store.append(alert(2, 17 * k + 9)).expect("append noise");
    }
    store.flush().expect("flush");
    store
}

fn job() -> CorrelationMatrixJob {
    CorrelationMatrixJob::new(CorrelationMatrixConfig {
        top_k: 5,
        lag_window: 2,
        min_support: 3,
        ..CorrelationMatrixConfig::default()
    })
}

#[test]
fn planted_pair_ranks_first_across_segment_boundaries() {
    // A flush limit incommensurate with the 3-records-per-cycle write
    // pattern scatters every cycle's alerts across segment files.
    for flush_every in [2usize, 7, 1000] {
        let dir = case_dir("volley-analyze-planted");
        let store = write_cascade(&dir, 30, flush_every);
        if flush_every < 90 {
            assert!(
                store.segments().expect("list segments").len() >= 2,
                "the small flush limit must split the history"
            );
        }
        let report = run_job(&store, job()).expect("job runs");
        assert_eq!(report.job, "correlation_matrix_v1");
        assert_eq!(report.records_scanned, 90);
        let matrix = &report.output;
        assert_eq!(matrix.tasks, 3);
        assert_eq!(matrix.alerts, 90);
        assert_eq!(matrix.truncated_tasks, 0);
        let top = matrix.pairs.first().expect("planted pair found");
        assert_eq!(
            (top.leader, top.follower),
            (0, 1),
            "flush_every={flush_every}: planted pair must rank first, got {:?}",
            matrix.pairs
        );
        assert_eq!(top.confidence, 1.0);
        assert_eq!(top.support, 30);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn repeated_runs_are_byte_identical() {
    let dir = case_dir("volley-analyze-bytes");
    write_cascade(&dir, 25, 7);
    // Two fresh opens: nothing carried over but the directory itself.
    let run = || {
        let store = Store::open(&dir).expect("reopen store");
        let report = run_job(&store, job()).expect("job runs");
        (
            serde_json::to_string(&report.output).expect("serializable"),
            report,
        )
    };
    let (first_json, first) = run();
    let (second_json, second) = run();
    assert_eq!(first_json, second_json, "output bytes must not drift");
    assert_eq!(first, second);
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    /// Flipping any bit of any segment — or cutting a segment anywhere —
    /// never panics the framework, and whatever survives is sane: no
    /// more records than the intact history, no pair confidence outside
    /// [0, 1], support never below the configured floor.
    #[test]
    fn corrupt_segments_never_panic(
        cycles in 4u64..20,
        flush_every in 2usize..10,
        victim in 0usize..1 << 16,
        flip_byte in 0usize..1 << 16,
        flip_bit in 0u8..8,
        cut_ratio in 0.0f64..1.0,
        truncate in 0u8..2,
    ) {
        let dir = case_dir("volley-analyze-corrupt");
        let store = write_cascade(&dir, cycles, flush_every);
        let intact = run_job(&store, job()).expect("intact job runs");
        drop(store);

        let segments = Store::open(&dir).expect("reopen").segments().expect("list");
        prop_assert!(!segments.is_empty());
        let (_, path) = &segments[victim % segments.len()];
        let mut bytes = std::fs::read(path).expect("read segment");
        if truncate == 1 {
            bytes.truncate((bytes.len() as f64 * cut_ratio) as usize);
        } else if !bytes.is_empty() {
            let at = flip_byte % bytes.len();
            bytes[at] ^= 1 << flip_bit;
        }
        std::fs::write(path, &bytes).expect("write corrupted segment");

        let store = Store::open(&dir).expect("reopen survives corruption");
        let report = run_job(&store, job()).expect("corrupt content is not an IO error");
        prop_assert!(report.records_scanned <= intact.records_scanned);
        prop_assert!(report.output.alerts <= intact.output.alerts);
        for pair in &report.output.pairs {
            prop_assert!((0.0..=1.0).contains(&pair.confidence));
            prop_assert!(pair.support >= 3);
            prop_assert!(pair.joint <= pair.support);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
