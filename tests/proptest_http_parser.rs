//! Property tests of the serving plane's HTTP request-head parser:
//! [`RequestParser`] must pop identical request sequences no matter how
//! the kernel fragments the byte stream — arbitrary chunk boundaries,
//! byte-at-a-time delivery, polls interleaved between partial reads —
//! and must trip its head cap as soon as the buffered bytes prove the
//! head oversized, without waiting for a terminator that may never
//! come. Mirrors `proptest_net_codec.rs` for the frame codec.

use proptest::prelude::*;

use volley::serve::{HttpError, Request, RequestParser, DEFAULT_MAX_REQUEST_BYTES};

/// One generated request: a path tail, query pairs, whether the client
/// sends `Connection: close`, and the length of a filler header.
type Spec = (String, Vec<(String, String)>, u8, usize);

/// Renders one request head onto the wire, terminator included.
fn request_wire(spec: &Spec) -> Vec<u8> {
    let (path_tail, params, close, filler) = spec;
    let mut target = format!("/{path_tail}");
    for (i, (k, v)) in params.iter().enumerate() {
        target.push(if i == 0 { '?' } else { '&' });
        target.push_str(k);
        target.push('=');
        target.push_str(v);
    }
    let mut head = format!("GET {target} HTTP/1.1\r\nHost: volley\r\n");
    if *filler > 0 {
        head.push_str("X-Filler: ");
        head.push_str(&"f".repeat(*filler));
        head.push_str("\r\n");
    }
    if *close != 0 {
        head.push_str("Connection: close\r\n");
    }
    head.push_str("\r\n");
    head.into_bytes()
}

/// The request the parser must produce for `spec`: the generated
/// alphabets avoid `%`, `+`, and delimiters, so decoding is identity.
fn expected(spec: &Spec) -> Request {
    let (path_tail, params, close, _) = spec;
    Request {
        method: "GET".to_string(),
        path: format!("/{path_tail}"),
        query: params.clone(),
        close: *close != 0,
    }
}

/// Concatenates every request's wire image into one byte stream.
fn wire_image(specs: &[Spec]) -> Vec<u8> {
    specs.iter().flat_map(request_wire).collect()
}

/// Splits `wire` at the (deduplicated, sorted) cut points and feeds the
/// chunks to the parser, draining complete requests after every chunk —
/// the exact access pattern of the serving event loop.
fn reassemble(wire: &[u8], cuts: &[usize], max_head: usize) -> Result<Vec<Request>, HttpError> {
    let mut points: Vec<usize> = cuts.iter().map(|&c| c % (wire.len() + 1)).collect();
    points.push(0);
    points.push(wire.len());
    points.sort_unstable();
    points.dedup();

    let mut parser = RequestParser::new(max_head);
    let mut out = Vec::new();
    for pair in points.windows(2) {
        parser.extend(&wire[pair[0]..pair[1]]);
        loop {
            match parser.next_request() {
                Ok(Some(request)) => out.push(request),
                Ok(None) => break,
                Err(e) => return Err(e),
            }
        }
    }
    assert_eq!(
        parser.pending(),
        0,
        "a fully-delivered wire leaves nothing pending"
    );
    Ok(out)
}

/// Strategy for one request spec: path tail, query pairs, close flag,
/// filler-header length. Alphabets are restricted to bytes the decoder
/// passes through verbatim, so `expected` needs no decoding logic.
#[allow(clippy::type_complexity)]
fn spec_strategy() -> (
    &'static str,
    proptest::collection::VecStrategy<(&'static str, &'static str)>,
    std::ops::Range<u8>,
    std::ops::Range<usize>,
) {
    (
        "[a-z0-9/._-]{0,12}",
        prop::collection::vec(("[a-z]{1,6}", "[a-z0-9]{0,6}"), 0..4),
        0u8..2,
        0usize..24,
    )
}

proptest! {
    /// Any request sequence survives any fragmentation: the parsed
    /// requests equal the expected ones regardless of where the stream
    /// was cut — including cuts inside the `\r\n\r\n` terminator.
    #[test]
    fn arbitrary_splits_parse_exactly(
        specs in prop::collection::vec(spec_strategy(), 0..6),
        cuts in prop::collection::vec(0usize..8192, 0..24),
    ) {
        let wire = wire_image(&specs);
        let got = reassemble(&wire, &cuts, DEFAULT_MAX_REQUEST_BYTES)
            .expect("all heads under the cap");
        let want: Vec<Request> = specs.iter().map(expected).collect();
        prop_assert_eq!(got, want);
    }

    /// Byte-at-a-time delivery (the worst fragmentation the kernel can
    /// produce) gives the same result as one big chunk.
    #[test]
    fn byte_at_a_time_equals_single_chunk(
        specs in prop::collection::vec(spec_strategy(), 0..4),
    ) {
        let wire = wire_image(&specs);
        let every_byte: Vec<usize> = (0..=wire.len()).collect();
        let fine = reassemble(&wire, &every_byte, DEFAULT_MAX_REQUEST_BYTES)
            .expect("under cap");
        let coarse = reassemble(&wire, &[], DEFAULT_MAX_REQUEST_BYTES).expect("under cap");
        prop_assert_eq!(fine, coarse);
    }

    /// Oversized heads error no matter how they are fragmented, the
    /// error fires without waiting for a terminator that may never
    /// come, and the parser stays poisoned afterwards even when valid
    /// bytes follow.
    #[test]
    fn oversized_heads_error_under_any_split(
        cap in 20usize..64,
        extra in 4usize..48,
        cuts in prop::collection::vec(0usize..256, 0..12),
    ) {
        let pad = "a".repeat(cap + extra);
        let wire = format!("GET / HTTP/1.1\r\nX-Pad: {pad}\r\n\r\n").into_bytes();
        prop_assert!(matches!(
            reassemble(&wire, &cuts, cap),
            Err(HttpError::HeadTooLarge { .. })
        ));

        // Same oversize, but the terminator never arrives: the cap must
        // still trip once pending bytes reach it, and the poisoned
        // parser must reject everything after — even a valid request.
        let headless = &wire[..wire.len() - 4];
        let mut parser = RequestParser::new(cap);
        let mut errored = false;
        for &b in headless {
            parser.extend(&[b]);
            match parser.next_request() {
                Ok(None) => {}
                Ok(Some(request)) => panic!("no terminator was sent, got {request:?}"),
                Err(HttpError::HeadTooLarge { size, max_size }) => {
                    prop_assert_eq!(size, cap);
                    prop_assert_eq!(max_size, cap);
                    errored = true;
                    break;
                }
                Err(e) => panic!("expected a cap trip, got {e:?}"),
            }
        }
        prop_assert!(errored, "cap must trip before a terminator arrives");
        prop_assert!(parser.poisoned());
        parser.extend(b"GET / HTTP/1.1\r\n\r\n");
        prop_assert_eq!(parser.next_request(), Err(HttpError::Poisoned));
    }

    /// A malformed request line poisons the parser permanently: every
    /// later poll reports `Poisoned` no matter how many valid requests
    /// arrive afterwards.
    #[test]
    fn malformed_heads_poison_permanently(
        junk in "[a-z ]{0,20}",
        polls in 1usize..6,
    ) {
        let mut parser = RequestParser::new(DEFAULT_MAX_REQUEST_BYTES);
        parser.extend(junk.as_bytes());
        parser.extend(b"\r\n\r\n");
        // Lowercase junk can never carry the `HTTP/1.` version token,
        // so the head is always malformed.
        prop_assert!(matches!(
            parser.next_request(),
            Err(HttpError::Malformed(_))
        ));
        prop_assert!(parser.poisoned());
        parser.extend(b"GET /metrics HTTP/1.1\r\n\r\n");
        for _ in 0..polls {
            prop_assert_eq!(parser.next_request(), Err(HttpError::Poisoned));
        }
    }

    /// Repeated polling while starved is stable: `Ok(None)` forever, no
    /// phantom requests, and `pending` tracks exactly the undelivered
    /// tail — then the final byte completes the request.
    #[test]
    fn polling_while_starved_is_stable(
        spec in spec_strategy(),
        polls in 1usize..8,
    ) {
        let wire = request_wire(&spec);
        let mut parser = RequestParser::new(DEFAULT_MAX_REQUEST_BYTES);
        for (i, &b) in wire[..wire.len() - 1].iter().enumerate() {
            parser.extend(&[b]);
            for _ in 0..polls {
                prop_assert!(parser.next_request().expect("under cap").is_none());
            }
            prop_assert_eq!(parser.pending(), i + 1);
        }
        parser.extend(&wire[wire.len() - 1..]);
        let request = parser.next_request().expect("under cap").expect("complete");
        prop_assert_eq!(request, expected(&spec));
        prop_assert_eq!(parser.pending(), 0);
    }
}
