//! Integration: the embedded HTTP serving plane end to end — a live
//! fleet scraped over `/metrics`, the range-query API sharing one
//! resolution/rendering module with `volley store query`, streaming
//! alert subscriptions fed mid-run, and protocol rejections over a real
//! socket.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use volley::core::task::TaskSpec;
use volley::obs::{names, parse_prometheus, Obs};
use volley::serve::{envelope, ServeConfig, Server, ServerHandle};
use volley::store::query::{run_query, QueryParams};
use volley::store::Store;
use volley::{SampleRecorder, TaskRunner};

const MONITORS: usize = 3;
const TICKS: usize = 40;
/// Ticks where the traces breach the task threshold and raise alerts.
const ALERT_FROM: usize = 20;
const ALERT_TO: usize = 25;

fn spec() -> TaskSpec {
    TaskSpec::builder(100.0 * MONITORS as f64)
        .monitors(MONITORS)
        .error_allowance(0.0)
        .build()
        .unwrap()
}

/// Quiet traces with a violation burst in `[ALERT_FROM, ALERT_TO)`:
/// every monitor reports far above its share, so the aggregate breaches
/// the threshold and the coordinator raises state alerts mid-run.
fn traces() -> Vec<Vec<f64>> {
    (0..MONITORS)
        .map(|m| {
            (0..TICKS)
                .map(|t| {
                    if (ALERT_FROM..ALERT_TO).contains(&t) {
                        200.0
                    } else {
                        20.0 + ((t * (3 + m)) % 7) as f64
                    }
                })
                .collect()
        })
        .collect()
}

/// One HTTP exchange over a real socket: sends a `Connection: close`
/// GET and reads to EOF, returning the raw response text.
fn http_get(handle: &ServerHandle, target: &str) -> String {
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(
            format!("GET {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .expect("send request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    String::from_utf8(response).expect("utf8 response")
}

/// Splits a response into (status line, body past the blank line).
fn split_response(response: &str) -> (&str, &str) {
    let status = response.split("\r\n").next().unwrap_or("");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body)
        .unwrap_or("");
    (status, body)
}

/// A live fleet is scrapable while its registry is hot: `/metrics`
/// exposes the runner counters with the values the run reported, and
/// the serving plane's own instruments show up in the same registry.
#[test]
fn metrics_scrape_reflects_live_fleet() {
    let obs = Obs::new(true);
    let handle = Server::start(ServeConfig::new("127.0.0.1:0"), &obs).expect("bind");
    let report = TaskRunner::new(&spec())
        .unwrap()
        .with_obs(obs.clone())
        .with_serve_publisher(handle.publisher())
        .run(&traces())
        .unwrap();
    assert_eq!(report.ticks, TICKS as u64);
    assert!(report.alerts >= 1, "the burst must alert: {report:?}");

    let (status, body) = {
        let response = http_get(&handle, "/metrics");
        let (status, body) = split_response(&response);
        (status.to_string(), body.to_string())
    };
    assert_eq!(status, "HTTP/1.1 200 OK");
    let samples = parse_prometheus(&body).expect("valid exposition text");
    let ticks = samples
        .iter()
        .find(|s| s.name == names::RUNNER_TICKS_TOTAL)
        .expect("runner tick counter exposed");
    assert_eq!(ticks.value, report.ticks as f64);

    // The serving plane instruments itself: the scrape above is visible
    // in the next scrape, through the same registry.
    let (_, second) = {
        let response = http_get(&handle, "/metrics");
        let (status, body) = split_response(&response);
        (status.to_string(), body.to_string())
    };
    let scrapes = parse_prometheus(&second)
        .expect("valid exposition text")
        .into_iter()
        .find(|s| s.name == names::SERVE_REQUESTS_METRICS_TOTAL)
        .expect("serve scrape counter exposed");
    assert!(scrapes.value >= 1.0);

    let stats = handle.shutdown();
    assert_eq!(stats.metrics_requests, 2);
    assert_eq!(stats.bad_requests, 0);
}

/// The HTTP query endpoint and the shared query module agree
/// byte-for-byte on every page of a recorded run — the same guarantee
/// `volley store query --json` gives, since all three sit on one
/// resolution/rendering path.
#[test]
fn query_endpoint_pages_match_shared_module() {
    let dir = std::env::temp_dir().join(format!("volley-serve-query-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open(&dir).expect("open store");
    let report = TaskRunner::new(&spec())
        .unwrap()
        .with_recorder(SampleRecorder::new(store))
        .run(&traces())
        .unwrap();
    assert!(report.alerts >= 1, "recorded run must carry alerts");

    let dir_label = dir.to_string_lossy().into_owned();
    let config = ServeConfig::new("127.0.0.1:0").with_store_dir(&dir_label);
    let handle = Server::start(config, &Obs::disabled()).expect("bind");

    // Walk the cursor chain: every HTTP page must be byte-identical to
    // the shared module's envelope for the same parameters.
    let store = Store::open(&dir).expect("reopen store");
    let mut params = QueryParams {
        limit: Some(4),
        ..QueryParams::default()
    };
    let mut pages = 0;
    loop {
        let expected = run_query(&store, &dir_label, &params).expect("query");
        let response = http_get(
            &handle,
            &format!("/api/v1/query?limit=4&cursor={}", params.cursor),
        );
        let (status, body) = split_response(&response);
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(
            body,
            envelope("store", &expected),
            "HTTP page at cursor {} must match the shared module",
            params.cursor
        );
        pages += 1;
        match expected.next_cursor {
            Some(cursor) => params.cursor = cursor,
            None => break,
        }
    }
    assert!(pages >= 2, "a recorded run spans multiple 4-row pages");

    // Filters ride the same path: an alert-only range returns exactly
    // the run's alerts.
    let alert_params = QueryParams {
        kind: Some(volley::store::RecordKind::Alert),
        limit: Some(4096),
        ..QueryParams::default()
    };
    let expected = run_query(&store, &dir_label, &alert_params).expect("query");
    assert_eq!(expected.matched, report.alerts);
    let response = http_get(&handle, "/api/v1/query?kind=alert&limit=4096");
    let (_, body) = split_response(&response);
    assert_eq!(body, envelope("store", &expected));

    let stats = handle.shutdown();
    assert_eq!(stats.query_requests, (pages + 1) as u64);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A subscriber that connects before the run sees every alert the fleet
/// raises mid-run on its open stream, then the terminating chunk at
/// shutdown.
#[test]
fn alert_stream_delivers_mid_run_alerts() {
    let obs = Obs::new(true);
    let handle = Server::start(ServeConfig::new("127.0.0.1:0"), &obs).expect("bind");

    // Subscribe before the run starts; the socket stays open while the
    // fleet ticks and drains only at shutdown.
    let mut subscriber = TcpStream::connect(handle.local_addr()).expect("connect");
    subscriber
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    subscriber
        .write_all(b"GET /api/v1/alerts/stream HTTP/1.1\r\nHost: test\r\n\r\n")
        .expect("subscribe");

    let report = TaskRunner::new(&spec())
        .unwrap()
        .with_obs(obs.clone())
        .with_serve_publisher(handle.publisher())
        .run(&traces())
        .unwrap();
    assert!(report.alerts >= 1, "the burst must alert: {report:?}");

    handle.publisher().run_end(report.ticks);
    let stats = handle.shutdown();
    assert_eq!(stats.stream_requests, 1);
    assert_eq!(stats.stream_lag_drops, 0);

    let mut raw = Vec::new();
    subscriber.read_to_end(&mut raw).expect("drain stream");
    let text = String::from_utf8(raw).expect("utf8 stream");
    assert!(
        text.contains("Transfer-Encoding: chunked"),
        "stream must be chunked: {text:?}"
    );
    let alerts = text.matches("\"event\":\"alert\"").count();
    assert_eq!(
        alerts as u64, report.alerts,
        "every alert the run raised must reach the open stream: {text:?}"
    );
    assert!(
        text.contains("\"event\":\"run_end\""),
        "shutdown must deliver the run-end marker: {text:?}"
    );
    assert!(
        text.ends_with("0\r\n\r\n"),
        "stream must terminate with the final chunk: {text:?}"
    );
}

/// Protocol hygiene over a real socket: unknown paths 404, non-GET
/// methods 405, malformed heads 400, oversized heads 431 — and the
/// loop keeps serving afterwards.
#[test]
fn protocol_rejections_do_not_wedge_the_loop() {
    let obs = Obs::new(true);
    let mut config = ServeConfig::new("127.0.0.1:0");
    config.max_request_bytes = 512;
    let handle = Server::start(config, &obs).expect("bind");

    let response = http_get(&handle, "/nope");
    assert!(response.starts_with("HTTP/1.1 404 Not Found"));

    // Non-GET: rejected per-request, connection stays usable.
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"POST /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    assert!(String::from_utf8(raw)
        .unwrap()
        .starts_with("HTTP/1.1 405 Method Not Allowed"));

    // Malformed head: 400 and the connection is closed.
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    assert!(String::from_utf8(raw)
        .unwrap()
        .starts_with("HTTP/1.1 400 Bad Request"));

    // Oversized head: the cap trips before any terminator arrives.
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(&[b'A'; 600]).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    assert!(String::from_utf8(raw)
        .unwrap()
        .starts_with("HTTP/1.1 431 Request Header Fields Too Large"));

    // The loop survived all of it: a normal scrape still works.
    let response = http_get(&handle, "/metrics");
    assert!(response.starts_with("HTTP/1.1 200 OK"));

    let stats = handle.shutdown();
    assert_eq!(stats.bad_requests, 2);
    assert_eq!(stats.other_requests, 2);
    assert_eq!(stats.metrics_requests, 1);
}
