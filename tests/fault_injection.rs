//! Integration: the runtime survives crashed and stalled monitors
//! without hanging, keeps raising every ground-truth alert in degraded
//! mode, and reproduces identical reports for identical fault plans.

use std::time::Duration;

use volley::core::task::{MonitorId, TaskSpec};
use volley::{DistributedTask, TaskRunner};
use volley_runtime::{FaultPath, FaultPlan};

const MONITORS: usize = 5;
const TICKS: usize = 200;
/// Every 50th tick all monitors spike together: an unambiguous
/// ground-truth alert (Σ = 1.4·T > T with every local threshold beaten).
const BURST_EVERY: usize = 50;

/// Error allowance 0 keeps every monitor at the default interval, so the
/// fault-free alert schedule is exact: one alert per burst tick.
fn spec() -> TaskSpec {
    TaskSpec::builder(100.0 * MONITORS as f64)
        .monitors(MONITORS)
        .error_allowance(0.0)
        .max_interval(8)
        .patience(3)
        .build()
        .unwrap()
}

fn traces() -> Vec<Vec<f64>> {
    let local = 100.0;
    (0..MONITORS)
        .map(|m| {
            (0..TICKS)
                .map(|t| {
                    let wobble = ((t * (3 + m)) % 7) as f64;
                    if t % BURST_EVERY == BURST_EVERY - 1 {
                        local * 1.4 + wobble
                    } else {
                        local * 0.2 + wobble
                    }
                })
                .collect()
        })
        .collect()
}

fn ground_truth_alerts(spec: &TaskSpec, traces: &[Vec<f64>]) -> Vec<u64> {
    let mut reference = DistributedTask::new(spec).unwrap();
    let mut truth = Vec::new();
    for tick in 0..TICKS as u64 {
        let values: Vec<f64> = traces.iter().map(|tr| tr[tick as usize]).collect();
        if reference.step(tick, &values).unwrap().alerted() {
            truth.push(tick);
        }
    }
    truth
}

#[test]
fn crash_and_stall_mid_run_still_raise_every_alert() {
    let spec = spec();
    let traces = traces();
    let truth = ground_truth_alerts(&spec, &traces);
    assert_eq!(truth.len(), TICKS / BURST_EVERY, "bursts alert fault-free");

    // Monitor 1 crashes at tick 40 (restarted by the supervisor); monitor
    // 3 stalls for 50 ticks from tick 20 (quarantined, then replaced).
    let plan = FaultPlan::new(42)
        .with_crash(MonitorId(1), 40)
        .with_stall(MonitorId(3), 20, 50);
    let report = TaskRunner::new(&spec)
        .unwrap()
        .with_fault_plan(plan)
        .with_tick_deadline(Duration::from_millis(40))
        .with_quarantine_after(2)
        .run(&traces)
        .unwrap();

    assert_eq!(
        report.ticks, TICKS as u64,
        "the run must not hang or truncate"
    );
    for t in &truth {
        assert!(
            report.alert_ticks.contains(t),
            "ground-truth alert at tick {t} missing; raised {:?}",
            report.alert_ticks
        );
    }
    // Both faulty monitors were quarantined, restarted and recovered.
    assert_eq!(report.quarantines, 2);
    assert_eq!(report.restarts, 2);
    assert_eq!(report.recoveries, 2);
    // Every dead round is accounted for (2 missed deadlines per fault
    // before quarantine, plus quarantined rounds until the restart lands).
    assert!(
        report.missed_tick_reports >= 4,
        "missed {} tick reports",
        report.missed_tick_reports
    );
}

#[test]
fn same_fault_plan_reproduces_identical_reports() {
    let spec = spec();
    // A shorter trace: every delayed tick report costs one full collection
    // deadline, and the test runs twice.
    let traces: Vec<Vec<f64>> = traces().into_iter().map(|t| t[..80].to_vec()).collect();
    let plan = FaultPlan::new(20130708)
        .with_drop_rate(FaultPath::ViolationReport, 0.25)
        .with_drop_rate(FaultPath::PollReply, 0.25)
        .with_duplication_rate(0.2)
        .with_delay_rate(0.05)
        .with_crash(MonitorId(2), 30)
        .with_stall(MonitorId(0), 60, 10);
    let run = || {
        TaskRunner::new(&spec)
            .unwrap()
            .with_fault_plan(plan.clone())
            .with_tick_deadline(Duration::from_millis(50))
            .with_quarantine_after(2)
            .run(&traces)
            .unwrap()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "fault plans must be deterministic");
    // The plan actually bites: at least the crash and the stall show up
    // (delays may add more quarantine/restart cycles, identically in both
    // runs).
    assert!(first.quarantines >= 2, "quarantines {}", first.quarantines);
    assert_eq!(first.restarts, first.quarantines);
    assert_eq!(first.recoveries, first.quarantines);
    assert_eq!(first.ticks, 80);
}

#[test]
fn unsupervised_stall_degrades_but_completes() {
    let spec = spec();
    let traces = traces();
    let truth = ground_truth_alerts(&spec, &traces);
    // The stalled monitor never comes back without the supervisor, so the
    // whole tail of the run is degraded — yet every alert still fires:
    // the missing monitor is counted at its local threshold, and the four
    // live monitors alone carry the burst over the global threshold.
    let report = TaskRunner::new(&spec)
        .unwrap()
        .with_fault_plan(FaultPlan::new(7).with_stall(MonitorId(4), 10, u64::MAX))
        .with_tick_deadline(Duration::from_millis(40))
        .with_quarantine_after(2)
        .with_supervision(false)
        .run(&traces)
        .unwrap();
    assert_eq!(report.ticks, TICKS as u64);
    assert_eq!(report.restarts, 0);
    for t in &truth {
        assert!(
            report.alert_ticks.contains(t),
            "ground-truth alert at tick {t} missing; raised {:?}",
            report.alert_ticks
        );
    }
    assert!(
        report.degraded_alerts >= 3,
        "late bursts aggregate degraded"
    );
    assert!(report.missed_tick_reports as usize >= TICKS - 20);
}
