//! The one-stop import for Volley programs.
//!
//! `use volley::prelude::*;` brings in [`VolleyConfig`] — the unified
//! builder that replaces the scattered `TaskSpec::builder` /
//! `*ScenarioConfig` / `FleetTask::new` entry points — together with
//! the types its terminal methods return and the handful of helpers
//! (trace generators, thresholds, observability) nearly every example
//! and integration test reaches for.
//!
//! ```
//! use volley::prelude::*;
//!
//! # fn main() -> Result<(), VolleyError> {
//! let report = VolleyConfig::new()
//!     .cluster(ClusterConfig::new(2, 4, 1))
//!     .ticks(100)
//!     .network_scenario()
//!     .run();
//! assert!(report.sampling_ops > 0);
//! # Ok(())
//! # }
//! ```

pub use crate::config::VolleyConfig;

// Core: adaptation, accuracy accounting, coordination, errors.
pub use volley_core::task::TaskSpec;
pub use volley_core::{
    selectivity_threshold, AccuracyReport, AdaptationConfig, AdaptiveSampler, DetectionLog,
    GroundTruth, PeriodicSampler, SamplingPolicy, Tick, VolleyError,
};

// Simulation: topology, scenarios, and the sharded engine.
pub use volley_sim::{
    ApplicationScenario, ApplicationScenarioConfig, ClusterConfig, DistributedScenario,
    DistributedScenarioConfig, DistributedScenarioReport, EngineConfig, EngineStats,
    NetworkScenario, NetworkScenarioConfig, ScenarioReport, ServerId, ShardId, ShardPlan,
    ShardedEngine, SimDuration, SimTime, SystemScenario, SystemScenarioConfig, VmId,
};

// Runtime: the threaded prototype and fleet execution.
pub use volley_runtime::{FleetRunner, FleetSummary, FleetTask, RuntimeReport, TaskRunner};

// Traces: synthetic workloads standing in for the paper's datasets.
pub use volley_traces::{
    DiurnalPattern, HttpWorkloadConfig, NetflowConfig, SystemMetricsGenerator,
};

// Observability: the self-monitoring subsystem.
pub use volley_obs::Obs;

// Store: sample recording, queries and offline backtesting.
pub use volley_store::{
    Backtest, Record, RecordKind, ReplayOutcome, SampleRecorder, ScanRange, Store, TaskMeta,
};
