//! The unified configuration entry point.
//!
//! Three PRs of growth left the workspace with three overlapping ways to
//! describe "a Volley monitoring job": [`TaskSpec`] (the core engine's
//! per-task spec), the `*ScenarioConfig` structs of `volley-sim`, and
//! [`FleetTask`] (the runtime's submission unit). They share most of
//! their knobs — error allowance, max interval, patience, selectivity,
//! seed — but each spells them differently. [`VolleyConfig`] is the one
//! place to set those knobs; terminal methods convert it into whichever
//! entry point a program needs. The old scenario and fleet constructors
//! (`NetworkScenario::new` and friends, `FleetTask::new`) shipped as
//! `#[deprecated]` shims for one release and have since been removed;
//! migrate to [`VolleyConfig`] or `FleetTask::from_spec`.
//!
//! ```
//! use volley::prelude::*;
//!
//! # fn main() -> Result<(), volley::VolleyError> {
//! let config = VolleyConfig::new()
//!     .error_allowance(0.02)
//!     .max_interval(8)
//!     .cluster(ClusterConfig::new(2, 4, 1))
//!     .ticks(200)
//!     .seed(7);
//!
//! // Same knobs, three entry points:
//! let sampler: AdaptiveSampler = config.sampler(100.0)?;      // core
//! let report = config.network_scenario().run();               // sim
//! let spec = config.task_spec(500.0, 3)?;                     // runtime
//! # let _ = (sampler, report, spec);
//! # Ok(())
//! # }
//! ```

use volley_core::task::TaskSpec;
use volley_core::{AdaptationConfig, AdaptiveSampler, VolleyError};
use volley_runtime::FleetTask;
use volley_sim::{
    ApplicationScenario, ApplicationScenarioConfig, ClusterConfig, DistributedScenario,
    DistributedScenarioConfig, NetworkScenario, NetworkScenarioConfig, SystemScenario,
    SystemScenarioConfig,
};

/// The unified builder for every Volley entry point (see module docs).
///
/// All setters are chainable and infallible; validation happens in the
/// terminal methods ([`adaptation`](Self::adaptation),
/// [`task_spec`](Self::task_spec), …), which surface the same
/// [`VolleyError`]s the underlying builders raise.
#[derive(Debug, Clone, PartialEq)]
pub struct VolleyConfig {
    error_allowance: f64,
    max_interval: u32,
    patience: u32,
    slack_ratio: Option<f64>,
    warmup_samples: Option<u32>,
    selectivity_percent: f64,
    cluster: ClusterConfig,
    ticks: usize,
    seed: u64,
    threads: usize,
}

impl Default for VolleyConfig {
    fn default() -> Self {
        VolleyConfig {
            error_allowance: 0.01,
            max_interval: 16,
            patience: 20,
            slack_ratio: None,
            warmup_samples: None,
            selectivity_percent: 1.0,
            cluster: ClusterConfig::paper(),
            ticks: 2000,
            seed: 0,
            threads: 1,
        }
    }
}

impl VolleyConfig {
    /// Creates a configuration with the paper's defaults: `err = 0.01`,
    /// `I_m = 16`, `p = 20`, `k = 1 %`, the 20×40 testbed, 2000 ticks.
    pub fn new() -> Self {
        VolleyConfig::default()
    }

    /// Error allowance `err` — the tolerated mis-detection fraction
    /// (0 = periodic sampling).
    #[must_use]
    pub fn error_allowance(mut self, err: f64) -> Self {
        self.error_allowance = err;
        self
    }

    /// Maximum sampling interval `I_m` in ticks.
    #[must_use]
    pub fn max_interval(mut self, ticks: u32) -> Self {
        self.max_interval = ticks;
        self
    }

    /// Adaptation patience `p` (ticks of quiet before widening).
    #[must_use]
    pub fn patience(mut self, p: u32) -> Self {
        self.patience = p;
        self
    }

    /// Allowance slack ratio `γ` (defaults to the core's own default).
    #[must_use]
    pub fn slack_ratio(mut self, gamma: f64) -> Self {
        self.slack_ratio = Some(gamma);
        self
    }

    /// Warm-up samples before adaptation engages (defaults to the
    /// core's own default).
    #[must_use]
    pub fn warmup_samples(mut self, n: u32) -> Self {
        self.warmup_samples = Some(n);
        self
    }

    /// Alert selectivity `k` in percent (thresholds derive from the
    /// `(100 − k)`-th percentile of each trace).
    #[must_use]
    pub fn selectivity_percent(mut self, k: f64) -> Self {
        self.selectivity_percent = k;
        self
    }

    /// Simulated testbed topology.
    #[must_use]
    pub fn cluster(mut self, cluster: ClusterConfig) -> Self {
        self.cluster = cluster;
        self
    }

    /// Simulation length in default sampling intervals.
    #[must_use]
    pub fn ticks(mut self, ticks: usize) -> Self {
        self.ticks = ticks;
        self
    }

    /// Random seed for trace generators.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Worker threads for the sharded simulation engine (see
    /// `volley_sim::shard`). Results never depend on this value.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The configured thread count.
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// The configured selectivity `k` in percent.
    pub fn selectivity(&self) -> f64 {
        self.selectivity_percent
    }

    // --- terminal conversions -------------------------------------------

    /// Builds the core adaptation configuration.
    ///
    /// # Errors
    ///
    /// Propagates the core builder's validation errors (allowance or
    /// interval out of range).
    pub fn adaptation(&self) -> Result<AdaptationConfig, VolleyError> {
        let mut builder = AdaptationConfig::builder()
            .error_allowance(self.error_allowance)
            .max_interval(self.max_interval)
            .patience(self.patience);
        if let Some(gamma) = self.slack_ratio {
            builder = builder.slack_ratio(gamma);
        }
        if let Some(n) = self.warmup_samples {
            builder = builder.warmup_samples(n);
        }
        builder.build()
    }

    /// Builds a single adaptive sampler against `threshold`.
    ///
    /// # Errors
    ///
    /// Propagates [`adaptation`](Self::adaptation) errors.
    pub fn sampler(&self, threshold: f64) -> Result<AdaptiveSampler, VolleyError> {
        Ok(AdaptiveSampler::new(self.adaptation()?, threshold))
    }

    /// Builds a distributed-task specification with `monitors` members
    /// sharing `global_threshold` (replacing direct
    /// `TaskSpec::builder` chains for the common case).
    ///
    /// # Errors
    ///
    /// Propagates the spec builder's validation errors.
    pub fn task_spec(
        &self,
        global_threshold: f64,
        monitors: usize,
    ) -> Result<TaskSpec, VolleyError> {
        let mut builder = TaskSpec::builder(global_threshold)
            .monitors(monitors)
            .error_allowance(self.error_allowance)
            .max_interval(self.max_interval)
            .patience(self.patience);
        if let Some(gamma) = self.slack_ratio {
            builder = builder.slack_ratio(gamma);
        }
        if let Some(n) = self.warmup_samples {
            builder = builder.warmup_samples(n);
        }
        builder.build()
    }

    /// Builds a fleet submission from this configuration's adaptation
    /// knobs (the replacement for the removed `FleetTask::new`).
    ///
    /// # Errors
    ///
    /// Propagates [`task_spec`](Self::task_spec) errors.
    pub fn fleet_task(
        &self,
        global_threshold: f64,
        traces: Vec<Vec<f64>>,
    ) -> Result<FleetTask, VolleyError> {
        let spec = self.task_spec(global_threshold, traces.len())?;
        Ok(FleetTask::from_spec(spec, traces))
    }

    /// The network-monitoring (DPI cost) scenario configuration.
    pub fn network_scenario_config(&self) -> NetworkScenarioConfig {
        NetworkScenarioConfig {
            cluster: self.cluster,
            error_allowance: self.error_allowance,
            selectivity_percent: self.selectivity_percent,
            ticks: self.ticks,
            seed: self.seed,
            max_interval: self.max_interval,
            patience: self.patience,
            ..NetworkScenarioConfig::default()
        }
    }

    /// The network-monitoring scenario (paper §V-A, Figure 6). Run it
    /// with `run()` or `run_parallel(self.thread_count())`.
    pub fn network_scenario(&self) -> NetworkScenario {
        NetworkScenario::from_config(self.network_scenario_config())
    }

    /// The system-metrics (agent query cost) scenario configuration.
    pub fn system_scenario_config(&self) -> SystemScenarioConfig {
        SystemScenarioConfig {
            cluster: self.cluster,
            error_allowance: self.error_allowance,
            selectivity_percent: self.selectivity_percent,
            ticks: self.ticks,
            seed: self.seed,
            max_interval: self.max_interval,
            patience: self.patience,
            ..SystemScenarioConfig::default()
        }
    }

    /// The system-metrics monitoring scenario.
    pub fn system_scenario(&self) -> SystemScenario {
        SystemScenario::from_config(self.system_scenario_config())
    }

    /// The application-level (access rate) scenario configuration.
    pub fn application_scenario_config(&self) -> ApplicationScenarioConfig {
        ApplicationScenarioConfig {
            cluster: self.cluster,
            error_allowance: self.error_allowance,
            selectivity_percent: self.selectivity_percent,
            ticks: self.ticks,
            seed: self.seed,
            max_interval: self.max_interval,
            patience: self.patience,
            ..ApplicationScenarioConfig::default()
        }
    }

    /// The application-level monitoring scenario.
    pub fn application_scenario(&self) -> ApplicationScenario {
        ApplicationScenario::from_config(self.application_scenario_config())
    }

    /// The distributed-tasks scenario configuration with `task_size`
    /// monitors per task.
    pub fn distributed_scenario_config(&self, task_size: usize) -> DistributedScenarioConfig {
        DistributedScenarioConfig {
            cluster: self.cluster,
            task_size,
            error_allowance: self.error_allowance,
            selectivity_percent: self.selectivity_percent,
            ticks: self.ticks,
            seed: self.seed,
            max_interval: self.max_interval,
            patience: self.patience,
            ..DistributedScenarioConfig::default()
        }
    }

    /// The distributed-tasks scenario (global polls, Figure 8).
    pub fn distributed_scenario(&self, task_size: usize) -> DistributedScenario {
        DistributedScenario::from_config(self.distributed_scenario_config(task_size))
    }

    /// The store-metadata stamp describing a run of this configuration —
    /// what `volley backtest` reads back to rebuild the production
    /// config.
    pub fn task_meta(&self, global_threshold: f64, monitors: usize) -> volley_store::TaskMeta {
        volley_store::TaskMeta {
            monitors,
            global_threshold,
            error_allowance: self.error_allowance,
            ticks: self.ticks as u64,
            seed: self.seed,
        }
    }

    /// Opens (or creates) a sample store at `dir`, stamps it with this
    /// configuration's [`task_meta`](Self::task_meta) and wraps it in a
    /// recorder ready for `TaskRunner::with_recorder` /
    /// `FleetTask::with_recorder`.
    ///
    /// # Errors
    ///
    /// Propagates store I/O errors; recording itself is best-effort and
    /// never fails the monitored run.
    pub fn recorder(
        &self,
        dir: impl Into<std::path::PathBuf>,
        global_threshold: f64,
        monitors: usize,
    ) -> std::io::Result<volley_store::SampleRecorder> {
        let store = volley_store::Store::open(dir)?;
        store.write_meta(&self.task_meta(global_threshold, monitors))?;
        Ok(volley_store::SampleRecorder::new(store))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let config = VolleyConfig::new();
        let adaptation = config.adaptation().unwrap();
        assert_eq!(adaptation.error_allowance(), 0.01);
        assert_eq!(adaptation.patience(), 20);
        assert_eq!(
            config.network_scenario_config().cluster,
            ClusterConfig::paper()
        );
    }

    #[test]
    fn one_config_feeds_all_three_entry_points() {
        let config = VolleyConfig::new()
            .error_allowance(0.05)
            .max_interval(8)
            .patience(5)
            .cluster(ClusterConfig::new(2, 4, 1))
            .ticks(100)
            .seed(3);

        let sampler = config.sampler(50.0).unwrap();
        assert_eq!(sampler.error_allowance(), 0.05);

        let spec = config.task_spec(200.0, 4).unwrap();
        assert_eq!(spec.monitors().len(), 4);
        assert_eq!(spec.adaptation().error_allowance(), 0.05);

        let scenario = config.network_scenario();
        assert_eq!(scenario.config().error_allowance, 0.05);
        assert_eq!(scenario.config().ticks, 100);
        assert_eq!(scenario.config().seed, 3);

        let task = config.fleet_task(200.0, vec![vec![1.0; 10]; 4]).unwrap();
        assert_eq!(task.spec.monitors().len(), 4);
    }

    #[test]
    fn scenario_config_equivalence_with_legacy_defaults() {
        // A default VolleyConfig must describe exactly the scenario the
        // legacy config structs default to.
        let config = VolleyConfig::new();
        assert_eq!(
            config.network_scenario_config(),
            NetworkScenarioConfig::default()
        );
        assert_eq!(
            config.system_scenario_config(),
            SystemScenarioConfig::default()
        );
        assert_eq!(
            config.application_scenario_config(),
            ApplicationScenarioConfig::default()
        );
        // The distributed scenario's legacy default allowance is the
        // paper's task-level 5 %; VolleyConfig keeps one allowance knob,
        // so matching it requires setting that knob explicitly.
        assert_eq!(
            config.error_allowance(0.05).distributed_scenario_config(5),
            DistributedScenarioConfig::default()
        );
    }

    #[test]
    fn validation_errors_surface() {
        assert!(VolleyConfig::new()
            .error_allowance(-1.0)
            .adaptation()
            .is_err());
        assert!(VolleyConfig::new()
            .error_allowance(2.0)
            .sampler(1.0)
            .is_err());
    }

    #[test]
    fn threads_clamp_to_one() {
        assert_eq!(VolleyConfig::new().threads(0).thread_count(), 1);
        assert_eq!(VolleyConfig::new().threads(8).thread_count(), 8);
    }

    #[test]
    fn recorder_terminal_stamps_backtest_metadata() {
        let dir =
            std::env::temp_dir().join(format!("volley-config-recorder-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = VolleyConfig::new().error_allowance(0.02).ticks(300).seed(9);
        let recorder = config.recorder(&dir, 500.0, 5).unwrap();
        recorder.record_sample(0, 0, 1.0);
        recorder.flush();
        let meta = recorder
            .with_store(|store| store.read_meta())
            .unwrap()
            .expect("meta stamped");
        assert_eq!(meta, config.task_meta(500.0, 5));
        assert_eq!(meta.error_allowance, 0.02);
        assert_eq!(meta.ticks, 300);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
