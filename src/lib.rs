//! # volley
//!
//! Facade crate of the **Volley** reproduction — *"Volley: Violation
//! Likelihood Based State Monitoring for Datacenters"* (ICDCS 2013).
//! It re-exports the workspace's five libraries under one roof:
//!
//! - [`volley_core`] — the violation-likelihood adaptation
//!   algorithms, distributed coordination and state correlation;
//! - [`volley_traces`] — synthetic datacenter workloads standing
//!   in for the paper's Internet2 / ICAC'09 / WorldCup'98 datasets;
//! - [`volley_sim`] — the discrete-event datacenter simulator with
//!   the Dom0 CPU cost model;
//! - [`volley_runtime`] — the threaded monitor/coordinator
//!   message-passing prototype;
//! - [`volley_obs`] — the self-monitoring observability subsystem
//!   (metrics registry, span tracing, exposition, Volley-watching-Volley);
//! - [`volley_store`] — the embedded time-series sample store with
//!   record/replay and offline backtesting;
//! - [`volley_analyze`] — offline analysis jobs over store recordings
//!   (single-pass, bounded-memory folds such as the §II.B correlation
//!   matrix);
//! - [`volley_serve`] — the embedded HTTP serving plane (Prometheus
//!   scrape, range-query API and streaming alert subscriptions).
//!
//! The most common entry points are re-exported at the crate root:
//!
//! ```
//! use volley::{AdaptationConfig, AdaptiveSampler};
//!
//! # fn main() -> Result<(), volley::VolleyError> {
//! let config = AdaptationConfig::builder().error_allowance(0.01).build()?;
//! let mut sampler = AdaptiveSampler::new(config, 100.0);
//! let outcome = sampler.observe(0, 42.0);
//! assert!(!outcome.violation);
//! # Ok(())
//! # }
//! ```
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! paper-to-module map and `EXPERIMENTS.md` for the reproduced figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod prelude;

pub use config::VolleyConfig;

pub use volley_analyze as analyze;
pub use volley_core as core;
pub use volley_obs as obs;
pub use volley_runtime as runtime;
pub use volley_serve as serve;
pub use volley_sim as sim;
pub use volley_store as store;
pub use volley_traces as traces;

pub use volley_core::{
    exceed_probability_bound, misdetection_bound, selectivity_threshold, AccuracyReport,
    AdaptationConfig, AdaptiveSampler, CorrelationConfig, CorrelationDetector, DetectionLog,
    DistributedTask, ErrorAllocator, GroundTruth, Interval, MonitoringPlan, Observation,
    OnlineStats, PeriodicSampler, SamplingPolicy, ThresholdSplit, Tick, VolleyError,
};
pub use volley_obs::Obs;
pub use volley_runtime::TaskRunner;
pub use volley_sim::{NetworkScenario, NetworkScenarioConfig};
pub use volley_store::{Backtest, SampleRecorder, ScanRange, Store};
pub use volley_traces::{
    DiurnalPattern, HttpWorkloadConfig, NetflowConfig, SystemMetricsGenerator,
};
